// Graph analytics: the paper's three graph workloads — connected
// components, single-source shortest paths and PageRank — on a
// generated power-law (RMAT) graph, comparing the three coordination
// strategies on CC.
//
//	go run ./examples/graphalytics
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	dcdatalog "repro"
	"repro/internal/datasets"
	"repro/internal/storage"
)

func main() {
	// A 2k-vertex, 40k-edge power-law graph, made undirected.
	edges := datasets.Undirect(datasets.RMATn(2000, 7))
	fmt.Printf("graph: %d directed edges\n", len(edges))

	connectedComponents(edges)
	shortestPaths(edges)
	pageRank(edges)
}

func connectedComponents(edges []datasets.Edge) {
	fmt.Println("\n== Connected Components (min label propagation) ==")
	src := `
		cc2(Y, min<Y>) :- arc(Y, _).
		cc2(Y, min<Z>) :- cc2(X, Z), arc(X, Y).
		cc(Y, min<Z>) :- cc2(Y, Z).
	`
	for _, strat := range []dcdatalog.Strategy{dcdatalog.Global, dcdatalog.SSP, dcdatalog.DWS} {
		db := dcdatalog.NewDatabase()
		db.MustDeclare("arc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int))
		if err := db.LoadTuples("arc", datasets.EdgeTuples(edges)); err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := db.Query(src, dcdatalog.WithWorkers(4), dcdatalog.WithStrategy(strat))
		if err != nil {
			log.Fatal(err)
		}
		components := map[int64]int{}
		for _, row := range res.Rows("cc") {
			components[row[1].(int64)]++
		}
		fmt.Printf("  %-6s: %d labeled vertices in %d components (%s)\n",
			strat, res.Len("cc"), len(components), time.Since(start).Round(time.Millisecond))
	}
}

func shortestPaths(edges []datasets.Edge) {
	fmt.Println("\n== Single-Source Shortest Paths ==")
	wedges := datasets.Weight(edges, 100, 7)
	db := dcdatalog.NewDatabase()
	db.MustDeclare("warc",
		dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int), dcdatalog.Col("w", dcdatalog.Int))
	if err := db.LoadTuples("warc", datasets.WEdgeTuples(wedges)); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`
		sp(To, min<C>) :- To = $start, C = 0.
		sp(To2, min<C>) :- sp(To1, C1), warc(To1, To2, C2), C = C1 + C2.
	`, dcdatalog.WithParam("start", 0), dcdatalog.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	rows := res.Rows("sp")
	sort.Slice(rows, func(i, j int) bool { return rows[i][1].(int64) < rows[j][1].(int64) })
	fmt.Printf("  %d vertices reachable from 0; five nearest:\n", len(rows))
	for _, row := range rows[:min(5, len(rows))] {
		fmt.Printf("    vertex %v at distance %v\n", row[0], row[1])
	}
}

func pageRank(edges []datasets.Edge) {
	fmt.Println("\n== PageRank (keyed sum aggregate in recursion) ==")
	deg := map[int64]int64{}
	verts := map[int64]bool{}
	for _, e := range edges {
		deg[e.Src]++
		verts[e.Src] = true
		verts[e.Dst] = true
	}
	var matrix []storage.Tuple
	for _, e := range edges {
		matrix = append(matrix, storage.Tuple{
			storage.IntVal(e.Src), storage.IntVal(e.Dst), storage.FloatVal(float64(deg[e.Src]))})
	}
	db := dcdatalog.NewDatabase()
	db.MustDeclare("matrix",
		dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int), dcdatalog.Col("d", dcdatalog.Float))
	if err := db.LoadTuples("matrix", matrix); err != nil {
		log.Fatal(err)
	}
	res, err := db.Query(`
		rank(X, sum<(X, I)>) :- matrix(X, _, _), I = (1 - $alpha) / $vnum.
		rank(X, sum<(Y, K)>) :- rank(Y, C), matrix(Y, X, D), K = $alpha * (C / D).
	`,
		dcdatalog.WithParam("alpha", 0.85),
		dcdatalog.WithParam("vnum", float64(len(verts))),
		dcdatalog.WithEpsilon(1e-8),
		dcdatalog.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	rows := res.Rows("rank")
	sort.Slice(rows, func(i, j int) bool { return rows[i][1].(float64) > rows[j][1].(float64) })
	fmt.Println("  top five pages:")
	for _, row := range rows[:min(5, len(rows))] {
		fmt.Printf("    vertex %v rank %.6f\n", row[0], row[1])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
