// Who will attend the party — the paper's Query 4, a mutual recursion
// between attend and a count aggregate: organizers attend, and anyone
// with at least three attending friends joins too, which may convince
// further friends, and so on to the fixpoint.
//
//	go run ./examples/party
package main

import (
	"fmt"
	"log"
	"sort"

	dcdatalog "repro"
)

func main() {
	db := dcdatalog.NewDatabase()
	db.MustDeclare("organizer", dcdatalog.Col("who", dcdatalog.Sym))
	db.MustDeclare("friend", dcdatalog.Col("who", dcdatalog.Sym), dcdatalog.Col("of", dcdatalog.Sym))
	db.MustLoad("organizer", [][]any{{"ann"}, {"bob"}, {"cleo"}})
	db.MustLoad("friend", [][]any{
		// dave is friends with all three organizers: he will come, and
		// that tips erin over her threshold too.
		{"dave", "ann"}, {"dave", "bob"}, {"dave", "cleo"},
		{"erin", "ann"}, {"erin", "bob"}, {"erin", "dave"},
		// frank only knows two attendees: he stays home.
		{"frank", "ann"}, {"frank", "erin"},
	})

	res, err := db.Query(`
		attend(X) :- organizer(X).
		cnt(Y, count<X>) :- attend(X), friend(Y, X).
		attend(X) :- cnt(X, N), N >= 3.
	`, dcdatalog.WithWorkers(2))
	if err != nil {
		log.Fatal(err)
	}

	var attending []string
	for _, row := range res.Rows("attend") {
		attending = append(attending, row[0].(string))
	}
	sort.Strings(attending)
	fmt.Println("attending:", attending)

	fmt.Println("attending-friend counts:")
	counts := res.Rows("cnt")
	sort.Slice(counts, func(i, j int) bool { return counts[i][0].(string) < counts[j][0].(string) })
	for _, row := range counts {
		fmt.Printf("  %-6v %v\n", row[0], row[1])
	}
}
