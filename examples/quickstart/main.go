// Quickstart: transitive closure in a dozen lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	dcdatalog "repro"
)

func main() {
	db := dcdatalog.NewDatabase()
	db.MustDeclare("arc", dcdatalog.Col("x", dcdatalog.Int), dcdatalog.Col("y", dcdatalog.Int))
	db.MustLoad("arc", [][]any{{1, 2}, {2, 3}, {3, 4}, {4, 2}})

	res, err := db.Query(`
		tc(X, Y) :- arc(X, Y).
		tc(X, Y) :- tc(X, Z), arc(Z, Y).
	`, dcdatalog.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transitive closure has %d pairs:\n", res.Len("tc"))
	for _, row := range res.Rows("tc") {
		fmt.Printf("  %v can reach %v\n", row[0], row[1])
	}
	stats := res.Stats()
	fmt.Printf("evaluated with %d workers under %s in %s\n",
		stats.Workers, stats.Strategy, stats.Duration)
}
