package dcdatalog

import (
	"context"
	"strings"
	"testing"

	"repro/internal/datasets"
	"repro/internal/queries"
)

// demandQueryData extends paperQueryData to the bound point-query
// variants, binding the parameter to a vertex that exists in the
// deterministic Gnp graph the suite loads.
func demandQueryData(t *testing.T, q queries.Query) (func(*Database), []Option) {
	t.Helper()
	switch q.Name {
	case "TC-bound", "SG-bound":
		seed := int64(5)
		edges := datasets.Gnp(100, 300, seed)
		load := func(db *Database) {
			for _, s := range q.EDB {
				if err := db.DeclareSchema(s); err != nil {
					t.Fatal(err)
				}
			}
			if err := db.LoadTuples("arc", datasets.EdgeTuples(edges)); err != nil {
				t.Fatal(err)
			}
		}
		if q.Name == "TC-bound" {
			return load, []Option{WithParam("src", edges[0].Src)}
		}
		return load, []Option{WithParam("v", edges[0].Dst)}
	}
	return paperQueryData(t, q)
}

// TestDemandDifferentialAllQueries runs every paper query plus the
// bound point-query variants under each coordination strategy with the
// demand rewrite on (the default) and off (WithoutDemandRewrite) —
// cold, and again through the warm prepared-base path — and requires
// identical output relations throughout. The rewrite restricts the
// recursive predicates to the demanded bindings, but the output
// relation a program asks for must be byte-identical; any divergence is
// a soundness bug in the magic-set transform.
func TestDemandDifferentialAllQueries(t *testing.T) {
	strategies := []struct {
		name string
		s    Strategy
	}{{"global", Global}, {"ssp", SSP}, {"dws", DWS}}
	all := append(queries.All(), queries.BoundTC(), queries.BoundSG())
	for _, q := range all {
		q := q
		t.Run(q.Name, func(t *testing.T) {
			load, params := demandQueryData(t, q)
			bound := len(q.Params) > 0 && q.Name != "SSSP" && q.Name != "PR"
			for _, st := range strategies {
				st := st
				t.Run(st.name, func(t *testing.T) {
					base := append([]Option{WithWorkers(4), WithStrategy(st.s)}, params...)

					off := NewDatabase()
					load(off)
					offRes, err := off.Query(q.Source, append(base, WithoutDemandRewrite())...)
					if err != nil {
						t.Fatal(err)
					}
					if offRes.DemandRewritten() {
						t.Fatal("WithoutDemandRewrite run reports a rewrite")
					}

					on := NewDatabase()
					load(on)
					onRes, err := on.Query(q.Source, base...)
					if err != nil {
						t.Fatal(err)
					}
					// The bound variants must actually take the rewrite; the
					// eight paper queries must all decline (aggregates, or no
					// external bound site).
					if onRes.DemandRewritten() != bound {
						t.Fatalf("DemandRewritten() = %v, want %v", onRes.DemandRewritten(), bound)
					}
					assertSameRows(t, onRes.Rows(q.Output), offRes.Rows(q.Output))

					// Warm path: Prepare once, Exec twice; the second Exec
					// attaches memoized indexes under the rewritten program.
					warm := NewDatabase()
					load(warm)
					prep, err := warm.Prepare(q.Source, base...)
					if err != nil {
						t.Fatal(err)
					}
					if prep.DemandRewritten() != bound {
						t.Fatalf("Prepared.DemandRewritten() = %v, want %v", prep.DemandRewritten(), bound)
					}
					if _, err := prep.Exec(context.Background()); err != nil {
						t.Fatal(err)
					}
					warmRes, err := prep.Exec(context.Background())
					if err != nil {
						t.Fatal(err)
					}
					assertSameRows(t, warmRes.Rows(q.Output), offRes.Rows(q.Output))
				})
			}
		})
	}
}

// TestDemandExplainShowsMagicAndEstimates pins the EXPLAIN surface: a
// rewritten bound query names its magic predicates and annotates joins
// with cardinality estimates once the base is warm enough to have
// statistics.
func TestDemandExplainShowsMagicAndEstimates(t *testing.T) {
	q := queries.BoundTC()
	load, params := demandQueryData(t, q)
	db := NewDatabase()
	load(db)
	text, err := db.Explain(q.Source, params...)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"demand rewrite: magic predicates tc__magic",
		"tc__magic",
		"est~",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("EXPLAIN missing %q:\n%s", want, text)
		}
	}

	// The opt-out must compile the original program and say why no
	// rewrite applies.
	plain, err := db.Explain(q.Source, append([]Option{WithoutDemandRewrite()}, params...)...)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "tc__magic") {
		t.Errorf("WithoutDemandRewrite EXPLAIN still shows magic predicates:\n%s", plain)
	}
}
